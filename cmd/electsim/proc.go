// Multi-process supervisor mode: -shards=N together with -listen runs
// the election's synchronous rounds across N real shardd worker
// processes over loopback sockets (DESIGN.md §12) instead of in-process
// goroutines. electsim computes the advice, stages the graph and
// advice as files, allocates the data-plane addresses, and supervises
// via shard.RunProc; the outcome is bit-identical to every other
// engine.
//
//	electsim -graph random -n 100000 -algo mintime -shards=4 -listen=127.0.0.1:0
//	electsim -graph hairy -n 64 -algo mintime -shards=3 -listen=127.0.0.1:0 -chaos=7
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	election "repro"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

// runProcMode is the -listen branch of run(): advice, staging, worker
// spawning, supervision, verification, reporting. Returns the exit code.
func runProcMode(s *election.System, g *election.Graph, phi, shards int, seed, chaos int64, network, listen, peersFlag, sharddBin string, timeout time.Duration) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "electsim:", err)
		return 1
	}
	bin, err := findShardd(sharddBin)
	if err != nil {
		return fail(err)
	}
	_, advBits, err := s.ComputeAdvice(g)
	if err != nil {
		return fail(err)
	}

	dir, err := os.MkdirTemp("", "electsim-shards-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)
	graphPath := filepath.Join(dir, "graph.bin")
	if err := graph.SaveBinaryFile(g, graphPath); err != nil {
		return fail(err)
	}
	advPath := filepath.Join(dir, "advice.txt")
	if err := os.WriteFile(advPath, []byte(advBits.String()), 0o644); err != nil {
		return fail(err)
	}
	journalDir := filepath.Join(dir, "journal")

	var addrs []string
	if peersFlag != "" {
		addrs = strings.Split(peersFlag, ",")
		if len(addrs) != shards {
			return fail(fmt.Errorf("-peers lists %d addresses, want %d", len(addrs), shards))
		}
	} else if addrs, err = allocAddrs(network, dir, shards); err != nil {
		return fail(err)
	}

	var chaosSpec string
	if chaos != 0 {
		chaosSpec = shard.SeededChaosSpec(chaos, shards)
	}
	start := func(shardIdx, inc int, ctrlAddr string) error {
		args := []string{
			"-shard", strconv.Itoa(shardIdx), "-shards", strconv.Itoa(shards), "-inc", strconv.Itoa(inc),
			"-graph", graphPath, "-advice", advPath,
			"-network", network, "-sup", ctrlAddr, "-peers", strings.Join(addrs, ","),
			"-journal", journalDir, "-seed", strconv.FormatInt(seed, 10),
		}
		if chaosSpec != "" {
			args = append(args, "-chaos", chaosSpec,
				"-chaos-seed", strconv.FormatInt(chaos^int64(shardIdx)*0x9E3779B9, 10))
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		go cmd.Wait() //nolint:errcheck // reaped for the zombie, exit status is the conn's job
		return nil
	}

	wall := time.Now()
	res, stats, err := shard.RunProc(context.Background(), g, shard.ProcOptions{
		Shards: shards, Network: network, Listen: listenAddr(network, listen, dir),
		Options: shard.Options{RoundTimeout: timeout},
		Start:   start,
	})
	if err != nil {
		return fail(err)
	}
	leader, err := sim.Verify(g, res.Outputs)
	if err != nil {
		return fail(fmt.Errorf("election failed verification: %w", err))
	}
	fmt.Printf("elected leader: node %d\n", leader)
	fmt.Printf("time: %d rounds (election index %d)\n", res.Time, phi)
	fmt.Printf("advice: %d bits\n", advBits.Len())
	fmt.Printf("multi-process (%s, %v): %d workers, %d retries, %d crashes, %d recoveries",
		network, time.Since(wall).Round(time.Millisecond), stats.Shards, stats.Retries, stats.Crashes, stats.Recoveries)
	if stats.Recoveries > 0 {
		fmt.Printf(" (mean recovery %v)", stats.MeanRecovery().Round(10*time.Microsecond))
	}
	fmt.Println()
	if chaosSpec != "" {
		fmt.Printf("chaos schedule: %s\n", chaosSpec)
	}
	if res.Messages > 0 {
		fmt.Printf("messages: %d\n", res.Messages)
	}
	return 0
}

// listenAddr resolves the control listen address: tcp uses the flag
// value as-is, unix defaults into the staging dir.
func listenAddr(network, listen, dir string) string {
	if network == "unix" && (listen == "" || listen == "auto") {
		return filepath.Join(dir, "ctrl.sock")
	}
	return listen
}

// allocAddrs picks the data-plane address of every shard: socket paths
// in the staging dir for unix, kernel-reserved loopback ports for tcp.
// TCP ports are reserved by binding and immediately closing a listener;
// the window between close and the worker's own bind is a real (tiny)
// race, which loopback test rigs tolerate — production deployments
// should pass -peers explicitly.
func allocAddrs(network, dir string, shards int) ([]string, error) {
	addrs := make([]string, shards)
	if network == "unix" {
		for i := range addrs {
			addrs[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.sock", i))
		}
		return addrs, nil
	}
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// findShardd locates the worker binary: the -shardd flag, the directory
// of the running electsim, then $PATH.
func findShardd(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "shardd")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("shardd"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("cannot find the shardd worker binary (build it with `go build ./cmd/shardd` and pass -shardd, or put it on $PATH)")
}
