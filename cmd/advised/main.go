// Command advised serves leader-election advice over HTTP: POST a
// port-labeled graph to /v1/advice (JSON) or /v1/advice.bin (compact
// binary) and get back φ, the O(n log n)-bit advice string and,
// optionally, an election transcript. Computed advice persists in a
// crash-safe page-backed cache, so isomorphic graphs — and restarts —
// are served from disk instead of re-running the oracle.
//
// Usage:
//
//	advised -listen :8344 -cache /var/lib/advised
//
// The process drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8344", "address to listen on")
	cacheDir := flag.String("cache", "", "advice cache directory (empty = memory only)")
	computeTimeout := flag.Duration("compute-timeout", 2*time.Minute, "per-request oracle budget")
	queue := flag.Int("queue", 4, "max concurrent oracle computations before shedding with 429")
	breakerN := flag.Int("breaker-failures", 5, "consecutive oracle failures that open the circuit breaker")
	breakerCool := flag.Duration("breaker-cooldown", 10*time.Second, "how long the breaker stays open")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight requests")
	flag.Parse()

	if err := run(*listen, *cacheDir, *computeTimeout, *queue, *breakerN, *breakerCool, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "advised:", err)
		os.Exit(1)
	}
}

func run(listen, cacheDir string, computeTimeout time.Duration, queue, breakerN int, breakerCool, drain time.Duration) error {
	logger := log.New(os.Stderr, "advised: ", log.LstdFlags)

	var st *store.Store
	if cacheDir != "" {
		var rep store.RecoveryReport
		var err error
		st, rep, err = store.Open(cacheDir, nil)
		if err != nil {
			return err
		}
		logger.Printf("cache %s: %d entries recovered, %d temp and %d corrupt discarded",
			cacheDir, rep.Entries, rep.DiscardedTemp, rep.DiscardedCorrupt)
	}

	srv := serve.New(serve.Config{
		Store:            st,
		ComputeTimeout:   computeTimeout,
		QueueLimit:       queue,
		BreakerThreshold: breakerN,
		BreakerCooldown:  breakerCool,
		Logf:             logger.Printf,
	})

	httpSrv := &http.Server{
		Addr:              listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", listen)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		srv.Close()
		return err
	case sig := <-sigCh:
		logger.Printf("%s: draining for up to %s", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(ctx)
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	logger.Printf("stopped")
	return nil
}
