// Command bench runs the repository's E1–E21 benchmark rows and emits a
// machine-readable BENCH_<n>.json, so the performance trajectory across
// PRs can be tracked without scraping `go test` text output.
//
// Usage:
//
//	bench                          # all benchmarks, auto-numbered output
//	bench -bench 'ElectionIndex$'  # one row
//	bench -benchtime 1x -out BENCH_ci.json
//
// The JSON records, per benchmark: name, iterations, ns/op, B/op,
// allocs/op, and every custom b.ReportMetric value (phi, advice-bits,
// rounds, ...), plus run metadata (go version, commit, timestamp).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	CreatedUnix int64    `json:"created_unix"`
	Created     string   `json:"created"`
	GoVersion   string   `json:"go_version"`
	Commit      string   `json:"commit,omitempty"`
	BenchRegexp string   `json:"bench_regexp"`
	BenchTime   string   `json:"bench_time,omitempty"`
	Results     []Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (e.g. 1x, 100ms)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "output file (default: next unused BENCH_<n>.json)")
		verbose   = flag.Bool("v", false, "echo the raw go test output")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *pkg, *out, *count, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, pkg, out string, count int, verbose bool) error {
	args := []string{"test", "-run=NONE", "-bench=" + bench, "-benchmem",
		"-count=" + strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime="+benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if verbose {
		os.Stdout.Write(raw)
	}
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	results, err := parse(string(raw))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q", bench)
	}
	now := time.Now().UTC()
	rep := Report{
		CreatedUnix: now.Unix(),
		Created:     now.Format(time.RFC3339),
		GoVersion:   goVersion(),
		Commit:      gitCommit(),
		BenchRegexp: bench,
		BenchTime:   benchtime,
		Results:     results,
	}
	if out == "" {
		out = nextOutputName()
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %d results to %s\n", len(results), out)
	return nil
}

// benchLine matches "BenchmarkFoo/sub-8   123   456 ns/op   ..." lines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(out string) ([]Result, error) {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", line)
		}
		r := Result{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = val
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// nextOutputName picks BENCH_<n>.json for the smallest n larger than any
// existing numbered report, so successive runs accumulate a trajectory.
func nextOutputName() string {
	max := 0
	matches, _ := filepath.Glob("BENCH_*.json")
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	return fmt.Sprintf("BENCH_%d.json", max+1)
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
