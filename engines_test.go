package election

// Property test for the engine-equivalence contract (DESIGN.md §5): the
// class-sharing bulk-synchronous engine, the sequential reference and
// the goroutine-per-node engine must be observationally identical —
// same Outputs, Rounds, Time and Messages — on every graph family in
// the repository plus a seeded random sweep. CI runs this under -race,
// which also exercises the BSP worker pool and the shared labeler.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/view"
)

// equivalenceFamilies enumerates one representative of every graph
// family in the repository: the paper's lower-bound constructions
// (internal/families) and every generator the root package exports.
func equivalenceFamilies() map[string]*Graph {
	zg, _ := ZLockGraph(5)
	h1 := BuildHairyRing([]int{2, 0, 3, 1})
	h2 := BuildHairyRing([]int{1, 4, 0, 2})
	s0a := BuildS0Member(1, 2, 0).Locked()
	s0b := BuildS0Member(1, 2, 1).Locked()
	x := max(s0a.G.MaxDegree(), s0b.G.MaxDegree())
	return map[string]*Graph{
		// internal/families constructions.
		"hk":        BuildHk(5, 3).G,
		"gk-member": BuildGkMember(5, 3, []int{0, 2, 1, 4, 3}).G,
		"necklace":  BuildNecklace(4, 3, 3, NecklaceCode(4, 3, 1)).G,
		"fx":        FXGraph(3, 1),
		"s0":        BuildS0Member(1, 2, 0).G,
		"zlock":     zg,
		"merge":     Merge(s0a, s0b, MergeParams{Ell: 2, X: x, ChainLen: 4}).G,
		"hairy":     h1.G,
		"composed":  BuildComposed([]Cut{h1.CutAt(0), h2.CutAt(0)}, 6, 7).H.G,
		// Generator families.
		"ring":        Ring(6),
		"path":        Path(7),
		"clique":      Clique(5),
		"star":        Star(6),
		"k-bipartite": CompleteBipartite(3, 4),
		"grid":        Grid(4, 3),
		"hypercube":   Hypercube(3),
		"torus":       Torus(3, 4),
		"lollipop":    Lollipop(4, 3),
		"binary-tree": BinaryTree(4),
		"caterpillar": Caterpillar([]int{2, 0, 1, 3}),
		"wheel":       Wheel(6),
		"wheel-tail":  WheelWithTail(6, 3),
		"broom":       Broom(3, 4),
	}
}

// engineOptions are the three synchronous realizations under test.
func engineOptions() map[string]Options {
	return map[string]Options{
		"bsp":        {Engine: SimBSP},
		"sequential": {Engine: SimSequential},
		"concurrent": {Concurrent: true},
	}
}

// requireSameElection asserts the engine-conformance contract between
// an election result and its reference: same Leader, Time, per-node
// Rounds and per-node Outputs. Messages is deliberately excluded — on
// the asynchronous engine it counts delivered messages, a property of
// the schedule, not of the algorithm. Shared by the differential
// suite, the fuzz targets and the at-scale benchmarks so the contract
// lives in one place.
func requireSameElection(tb testing.TB, label string, ref, res *Result) {
	tb.Helper()
	if res.Time != ref.Time || res.Leader != ref.Leader {
		tb.Errorf("%s: (time=%d leader=%d) != reference (time=%d leader=%d)",
			label, res.Time, res.Leader, ref.Time, ref.Leader)
	}
	if !reflect.DeepEqual(res.Rounds, ref.Rounds) {
		tb.Errorf("%s: per-node rounds differ from the reference", label)
	}
	if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
		tb.Errorf("%s: per-node outputs differ from the reference", label)
	}
}

func checkResultsAgree(t *testing.T, label string, results map[string]*Result) {
	t.Helper()
	ref := results["sequential"]
	for engine, res := range results {
		if res.Time != ref.Time || res.Messages != ref.Messages || res.Leader != ref.Leader {
			t.Errorf("%s: %s (time=%d messages=%d leader=%d) != sequential (time=%d messages=%d leader=%d)",
				label, engine, res.Time, res.Messages, res.Leader, ref.Time, ref.Messages, ref.Leader)
		}
		if !reflect.DeepEqual(res.Rounds, ref.Rounds) {
			t.Errorf("%s: %s per-node rounds differ from sequential", label, engine)
		}
		if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
			t.Errorf("%s: %s per-node outputs differ from sequential", label, engine)
		}
	}
}

// TestEngineEquivalenceOnFamilies runs the full minimum-time pipeline on
// every feasible family member with all three engines; infeasible
// members (ring, hypercube, torus, ...) are covered by the synthetic
// sweep below, since they reject election before any engine runs.
func TestEngineEquivalenceOnFamilies(t *testing.T) {
	for name, g := range equivalenceFamilies() {
		s := NewSystem()
		if !s.Feasible(g) {
			continue
		}
		_, enc, err := s.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results := make(map[string]*Result)
		for engine, o := range engineOptions() {
			res, err := s.RunElect(g, enc, o)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, engine, err)
			}
			results[engine] = res
		}
		checkResultsAgree(t, name, results)
	}
}

// degStop is a synthetic decider: a node stops at a round depending on
// its degree, exercising decided-but-participating semantics without
// needing feasibility.
type degStop struct{ round int }

func (d *degStop) Decide(r int, b *view.View) ([]int, bool) {
	if r >= d.round {
		return []int{}, true
	}
	return nil, false
}

// TestEngineEquivalenceSynthetic drives all three engines below the
// election layer with the synthetic decider on every family, feasible or
// not (ring, hypercube, torus reject election before any engine runs, so
// this is where their exchange semantics get compared), checking the
// exact per-round message accounting.
func TestEngineEquivalenceSynthetic(t *testing.T) {
	for name, g := range equivalenceFamilies() {
		mk := func() sim.Factory {
			return func(simID, deg int) sim.Decider {
				return &degStop{round: 1 + deg%3}
			}
		}
		ref, err := sim.RunSequential(view.NewTable(), g, mk(), 100)
		if err != nil {
			t.Fatalf("%s/sequential: %v", name, err)
		}
		for engine, run := range map[string]func() (*sim.Result, error){
			"bsp": func() (*sim.Result, error) {
				return sim.RunBSP(view.NewTable(), g, mk(), 100, 0)
			},
			"concurrent": func() (*sim.Result, error) {
				return sim.RunConcurrent(view.NewTable(), g, mk(), 100, false)
			},
		} {
			res, err := run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, engine, err)
			}
			if res.Time != ref.Time || res.Messages != ref.Messages ||
				!reflect.DeepEqual(res.Rounds, ref.Rounds) ||
				!reflect.DeepEqual(res.Outputs, ref.Outputs) {
				t.Errorf("%s: %s disagrees with sequential", name, engine)
			}
		}
	}
}

// TestDifferentialConformance is the cross-engine differential suite of
// the asynchronous engine: on every feasible graph family, the same
// advice-driven election runs on the BSP reference, the sequential
// engine, and the asynchronous engine under every delay model and five
// delay seeds each. Outputs, Rounds and Time must match the BSP
// reference exactly — the α-synchronizer soundness argument of
// DESIGN.md §7 says the delay adversary controls the schedule and
// nothing else. (Messages is deliberately excluded for async: it
// counts delivered messages, which is a property of the schedule.)
func TestDifferentialConformance(t *testing.T) {
	for name, g := range equivalenceFamilies() {
		s := NewSystem()
		if !s.Feasible(g) {
			continue
		}
		_, enc, err := s.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := s.RunElect(g, enc, Options{}) // BSP
		if err != nil {
			t.Fatalf("%s/bsp: %v", name, err)
		}
		seqRes, err := s.RunElect(g, enc, Options{Engine: SimSequential})
		if err != nil {
			t.Fatalf("%s/seq: %v", name, err)
		}
		requireSameElection(t, name+"/seq", ref, seqRes)
		for mname, model := range DelayModels(g) {
			for seed := int64(0); seed < 5; seed++ {
				res, err := s.RunElect(g, enc, Options{Async: true, AsyncSeed: seed, Delay: model})
				if err != nil {
					t.Fatalf("%s/async-%s seed %d: %v", name, mname, seed, err)
				}
				requireSameElection(t, fmt.Sprintf("%s/async-%s-s%d", name, mname, seed), ref, res)
			}
		}
	}
}

// TestAsyncConformanceModerateScale drives the class-sharing async
// engine against BSP at a size where the calendar queue, the level
// window and the recycling paths do real work: a 4k random graph and a
// shuffled hypercube, under a uniform, a heavy-tailed and a slow-cut
// schedule. (The 10k/100k sizes of the acceptance run live in E23,
// BenchmarkAsyncScale, which performs the same comparison.)
func TestAsyncConformanceModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale conformance skipped in -short")
	}
	for name, g := range map[string]*Graph{
		"random-n4000":  RandomConnected(4000, 2000, 1),
		"hypercube-d11": ShufflePorts(Hypercube(11), 1),
	} {
		s := NewSystem()
		ref, err := s.RunMinTime(g, Options{})
		if err != nil {
			t.Fatalf("%s/bsp: %v", name, err)
		}
		for mname, model := range DelayModels(g) {
			if mname == "exp" || mname == "fixed" {
				continue // keep -race runtime sane; covered at small scale
			}
			res, err := s.RunMinTime(g, Options{Async: true, AsyncSeed: 2, Delay: model})
			if err != nil {
				t.Fatalf("%s/async-%s: %v", name, mname, err)
			}
			requireSameElection(t, name+"/async-"+mname, ref, res)
		}
	}
}

// TestEngineEquivalenceRandomSweep is the seeded random sweep: min-time
// election across engines on RandomConnected instances of varied size
// and density.
func TestEngineEquivalenceRandomSweep(t *testing.T) {
	for _, n := range []int{10, 25, 60} {
		for seed := int64(0); seed < 4; seed++ {
			g := RandomConnected(n, n/2+int(seed), seed)
			s := NewSystem()
			if !s.Feasible(g) {
				continue
			}
			_, enc, err := s.ComputeAdvice(g)
			if err != nil {
				t.Fatal(err)
			}
			results := make(map[string]*Result)
			for engine, o := range engineOptions() {
				res, err := s.RunElect(g, enc, o)
				if err != nil {
					t.Fatalf("n=%d seed=%d %s: %v", n, seed, engine, err)
				}
				results[engine] = res
			}
			checkResultsAgree(t, fmt.Sprintf("random-n%d-s%d", n, seed), results)
		}
	}
}
