package election

// Differential suite for the crash-tolerant sharded BSP engine at the
// election level (DESIGN.md §9): on every graph family, an election run
// with Options.Shards > 1 must be bit-identical to the single-process
// BSP engine — same Leader, Time, Messages, per-node Rounds and
// Outputs — with a clean transport, under seeded chaos schedules
// (drops, dups, reorders, delays, crashes), and across kill-restart
// recoveries. CI runs this under -race; extra chaos seeds can be
// supplied via SHARD_CHAOS_SEEDS=7,8,9.
import (
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/shard"
	"repro/internal/view"
)

var shardCounts = []int{2, 3}

// shardChaosSeeds returns the chaos schedules to replay: three fixed
// seeds, plus any extras from SHARD_CHAOS_SEEDS (comma-separated).
func shardChaosSeeds(tb testing.TB) []int64 {
	seeds := []int64{1, 2, 3}
	env := os.Getenv("SHARD_CHAOS_SEEDS")
	if env == "" {
		return seeds
	}
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			tb.Fatalf("SHARD_CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// requireSameShardRun extends requireSameElection with the Messages
// equality the synchronous engines share (the sharded engine reproduces
// the paper's 2m-per-round measure exactly; transport traffic is
// accounted separately in ShardStats).
func requireSameShardRun(tb testing.TB, label string, ref, res *Result) {
	tb.Helper()
	requireSameElection(tb, label, ref, res)
	if res.Messages != ref.Messages {
		tb.Errorf("%s: messages=%d, reference has %d", label, res.Messages, ref.Messages)
	}
}

// TestShardedDifferential runs the full minimum-time pipeline on every
// feasible family with the sharded engine — clean transport and chaos
// schedules — against the BSP reference.
func TestShardedDifferential(t *testing.T) {
	seeds := shardChaosSeeds(t)
	for name, g := range equivalenceFamilies() {
		s := NewSystem()
		if !s.Feasible(g) {
			continue
		}
		_, enc, err := s.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := s.RunElect(g, enc, Options{}) // single-process BSP
		if err != nil {
			t.Fatalf("%s/bsp: %v", name, err)
		}
		for _, shards := range shardCounts {
			res, err := s.RunElect(g, enc, Options{Shards: shards})
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", name, shards, err)
			}
			requireSameShardRun(t, name+"/clean", ref, res)
			if st := res.ShardStats; st == nil || st.Crashes != 0 {
				t.Errorf("%s/shards=%d: clean run stats = %+v", name, shards, st)
			}
			for _, seed := range seeds {
				inj := SeededShardChaos(seed, shards)
				res, err := s.RunElect(g, enc, Options{Shards: shards, ShardFaults: inj, ShardSeed: seed})
				label := name + "/chaos/" + inj.String()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				requireSameShardRun(t, label, ref, res)
			}
		}
	}
}

// TestShardedKillRestart kills shard 0 at its first transport operation
// on every feasible family: the supervisor must restart it, the replay
// must complete (Recoveries >= 1), and the outputs must not move.
func TestShardedKillRestart(t *testing.T) {
	for name, g := range equivalenceFamilies() {
		s := NewSystem()
		if !s.Feasible(g) {
			continue
		}
		_, enc, err := s.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := s.RunElect(g, enc, Options{})
		if err != nil {
			t.Fatalf("%s/bsp: %v", name, err)
		}
		inj := NewFaultInjector(11)
		inj.ArmAfter(ShardCrashCat(0), 1, 1)
		res, err := s.RunElect(g, enc, Options{Shards: 3, ShardFaults: inj})
		if err != nil {
			t.Fatalf("%s/kill-restart: %v [%s]", name, err, inj)
		}
		requireSameShardRun(t, name+"/kill-restart", ref, res)
		st := res.ShardStats
		if st == nil || st.Crashes < 1 || st.Recoveries < 1 {
			t.Errorf("%s: kill-restart stats = %+v [%s]", name, st, inj)
		}
	}
}

// TestShardedSynthetic drives the sharded engine below the election
// layer on every family, feasible or not (ring, hypercube, torus reject
// election before any engine runs), with the synthetic degree decider —
// the sharded counterpart of TestEngineEquivalenceSynthetic.
func TestShardedSynthetic(t *testing.T) {
	for name, g := range equivalenceFamilies() {
		mk := func() sim.Factory {
			return func(simID, deg int) sim.Decider {
				return &degStop{round: 1 + deg%3}
			}
		}
		ref, err := sim.RunBSP(view.NewTable(), g, mk(), 100, 0)
		if err != nil {
			t.Fatalf("%s/bsp: %v", name, err)
		}
		for _, shards := range shardCounts {
			res, _, err := shard.Run(view.NewTable(), g, mk(), shard.Options{Shards: shards, MaxRounds: 100})
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", name, shards, err)
			}
			if res.Time != ref.Time || res.Messages != ref.Messages ||
				!reflect.DeepEqual(res.Rounds, ref.Rounds) ||
				!reflect.DeepEqual(res.Outputs, ref.Outputs) {
				t.Errorf("%s/shards=%d: sharded run disagrees with bsp", name, shards)
			}
		}
	}
}
