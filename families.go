package election

import (
	"repro/internal/algorithms"
	"repro/internal/families"
	graphio "repro/internal/graph"
)

// Lower-bound constructions of the paper, re-exported. See
// internal/families for full documentation.
type (
	// HK is a member of the family G_k of Theorem 3.2 (Figure 1).
	HK = families.HK
	// Necklace is a k-necklace of Theorem 3.3 (Figure 2).
	Necklace = families.Necklace
	// Lock locates a z-lock inside a graph (Theorem 4.2, Figure 3).
	Lock = families.Lock
	// S0Member is a graph of the sequence S₀ of Theorem 4.2 (Figure 5).
	S0Member = families.S0Member
	// LockedGraph is a graph of the form L1 * M * L2 (Theorem 4.2).
	LockedGraph = families.LockedGraph
	// TkSequence is the inductive merge hierarchy T_0, T_1, ... (Thm 4.2).
	TkSequence = families.TkSequence
	// MergeParams scales the merge operation of Theorem 4.2.
	MergeParams = families.MergeParams
	// PVNode is a pruned view (Theorem 4.2, Figure 6).
	PVNode = families.PVNode
	// HairyRing is a graph of the class H of Proposition 4.1 (Figure 9).
	HairyRing = families.HairyRing
	// Cut is the cut of a hairy ring (Figure 9b).
	Cut = families.Cut
	// ComposedHairyRing is the adversarial composition of Proposition 4.1.
	ComposedHairyRing = families.ComposedHairyRing
	// Part identifies one of the four milestones of Theorems 4.1/4.2.
	Part = families.Part
)

// The four milestone parts of Theorems 4.1 and 4.2.
const (
	PartAdditive    = families.PartAdditive
	PartLinear      = families.PartLinear
	PartPolynomial  = families.PartPolynomial
	PartExponential = families.PartExponential
)

var (
	// Graph text-format I/O (see internal/graph/io.go).
	ReadGraph  = graphio.Read
	ParseGraph = graphio.Parse

	// F(x) cliques and their enumeration (Section 3).
	FXGraph    = families.FXGraph
	FXCount    = families.FXCount
	FXSequence = families.FXSequence

	// Theorem 3.2 (Figure 1).
	BuildHk       = families.BuildHk
	BuildGkMember = families.BuildGkMember
	GkEntropyBits = families.GkEntropyBits

	// Theorem 3.3 (Figure 2).
	BuildNecklace       = families.BuildNecklace
	NecklaceCode        = families.NecklaceCode
	NecklaceCodeCount   = families.NecklaceCodeCount
	NecklaceEntropyBits = families.NecklaceEntropyBits

	// Theorem 4.2 (Figures 3-8).
	ZLockGraph           = families.ZLockGraph
	BuildS0Member        = families.BuildS0Member
	S0XI                 = families.S0XI
	BuildPrunedView      = families.BuildPrunedView
	SubstitutePrunedView = families.SubstitutePrunedView
	Merge                = families.Merge
	Glue                 = families.Glue
	PaperMergeParams     = families.PaperMergeParams
	BuildTkSequence      = families.BuildTkSequence

	// Proposition 4.1 (Figure 9).
	BuildHairyRing = families.BuildHairyRing
	BuildComposed  = families.BuildComposed

	// Arithmetic helpers of Theorem 4.1.
	Tower     = algorithms.Tower
	FloorLog2 = algorithms.FloorLog2
	LogStar   = algorithms.LogStar
)
