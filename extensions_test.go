package election

import (
	"testing"
)

func TestAsyncEngineEndToEnd(t *testing.T) {
	g := Lollipop(5, 3)
	s := NewSystem()
	syncRes, err := s.RunMinTime(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		res, err := s.RunMinTime(g, Options{Async: true, AsyncSeed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Leader != syncRes.Leader || res.Time != syncRes.Time {
			t.Errorf("seed %d: async result differs from synchronous", seed)
		}
	}
}

func TestNaiveBaselinePublic(t *testing.T) {
	g := Lollipop(5, 3)
	s := NewSystem()
	trie, err := s.RunMinTime(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := s.RunNaiveMinTime(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Leader != trie.Leader {
		t.Error("oracles disagree on the leader")
	}
	if naive.Time != trie.Time {
		t.Error("both run in time phi")
	}
	if naive.AdviceBits <= trie.AdviceBits {
		t.Errorf("naive advice %d bits should exceed trie advice %d bits",
			naive.AdviceBits, trie.AdviceBits)
	}
}

func TestNaiveBaselineCap(t *testing.T) {
	g := Lollipop(8, 14)
	s := NewSystem()
	if _, err := s.RunNaiveMinTime(g, 10_000, Options{}); err == nil {
		t.Skip("graph too tame for cap")
	}
}

func TestTreeElectPublic(t *testing.T) {
	g := Path(5)
	s := NewSystem()
	res, err := s.RunTreeElect(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time > g.Diameter() {
		t.Errorf("tree election time %d > D", res.Time)
	}
	if res.AdviceBits != 0 {
		t.Error("tree election needs no advice")
	}
	// Non-trees must not terminate.
	if _, err := s.RunTreeElect(Lollipop(4, 2), Options{}); err == nil {
		t.Error("tree election on a non-tree should fail")
	}
}

func TestStablePartitionPublic(t *testing.T) {
	s := NewSystem()
	// Ring(6): all nodes equivalent — one class.
	classes, _ := s.StablePartition(Ring(6))
	for _, c := range classes {
		if c != 0 {
			t.Error("ring nodes should be one class")
		}
	}
	// Feasible graph: discrete partition.
	g := Lollipop(5, 3)
	classes, depth := s.StablePartition(g)
	seen := map[int]bool{}
	for _, c := range classes {
		if seen[c] {
			t.Error("feasible graph partition should be discrete")
		}
		seen[c] = true
	}
	phi, _ := s.ElectionIndex(g)
	if depth > phi {
		t.Errorf("stabilization depth %d should be <= phi %d", depth, phi)
	}
	// Hypercube: symmetric, one class.
	classes, _ = s.StablePartition(Hypercube(3))
	for _, c := range classes {
		if c != 0 {
			t.Error("hypercube nodes should be one class")
		}
	}
}

// Failure injection: advice computed for one graph but delivered to the
// nodes of another must never produce a silently wrong election — either
// decoding fails, the run errors, or verification rejects the outputs.
func TestWrongAdviceDetected(t *testing.T) {
	s := NewSystem()
	g1 := Lollipop(5, 3)
	g2 := Lollipop(4, 6)
	_, adv1, err := s.ComputeAdvice(g1)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.RunElect(g2, adv1, Options{}); err == nil {
		// A successful verified election with foreign advice can only
		// mean the advice was accidentally valid for g2 as well — the
		// leader must then be consistent. Re-run to confirm determinism.
		res2, err2 := s.RunElect(g2, adv1, Options{})
		if err2 != nil || res2.Leader != res.Leader {
			t.Error("foreign advice produced inconsistent elections")
		}
	}
}

// Failure injection: flipping each bit of the advice in turn must never
// yield a verified election with a different leader than the true one —
// corruption is either detected or harmless.
func TestCorruptedAdviceNeverMisleads(t *testing.T) {
	s := NewSystem()
	g := Path(5)
	_, adv, err := s.ComputeAdvice(g)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := s.RunElect(g, adv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step := adv.Len() / 40
	if step == 0 {
		step = 1
	}
	for i := 0; i < adv.Len(); i += step {
		corrupted := flipBit(adv, i)
		res, err := s.RunElect(g, corrupted, Options{MaxRounds: 40})
		if err != nil {
			continue // detected: decode failure, run failure, or rejected verification
		}
		if res.Leader != truth.Leader {
			t.Errorf("bit %d flip yielded a VERIFIED election of a different leader %d (truth %d)",
				i, res.Leader, truth.Leader)
		}
	}
}

func flipBit(b Bits, i int) Bits {
	var s string
	for j := 0; j < b.Len(); j++ {
		bit := b.Bit(j)
		if j == i {
			bit = !bit
		}
		if bit {
			s += "1"
		} else {
			s += "0"
		}
	}
	return BitsFromString(s)
}
