package election_test

// E24 — the advice service end to end (DESIGN.md §8): the full HTTP
// pipeline of internal/serve on the E22 random graphs at 10k and 100k
// nodes, one row per cache temperature.
//
//	cold — every request computes: decode, canonical hash, oracle,
//	       persist; the floor set by Theorem 3.1's oracle itself.
//	warm — isomorphic (relabeled) graphs hit the persistent store via
//	       the canonical hash: refinement-priced, oracle-free.
//	hot  — byte-identical requests hit the in-memory request memo:
//	       one body hash and one cache probe.
//
// The recorded trajectory (BENCH_4.json) pins the robustness PR's
// headline: at 100k nodes the hot path serves advice at better than
// 10x the cold oracle's rate (in practice several hundred times).
// Each row reports req/s beyond ns/op.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	election "repro"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/store"
)

func benchPost(b *testing.B, h http.Handler, body []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/advice.bin", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
}

func BenchmarkAdviceService(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		g := election.RandomConnected(n, n/2, 1)
		body, _ := g.MarshalBinary()
		// Two distinct relabelings for the warm rows: with a one-slot
		// memo they evict each other, so every warm request pays the
		// canonical hash and the store read, never the memo.
		perm := make([]int, g.N())
		for i := range perm {
			perm[i] = g.N() - 1 - i
		}
		warmA, _ := graph.RelabelNodes(g, perm).MarshalBinary()
		for i := range perm {
			perm[i] = (i + 1) % g.N()
		}
		warmB, _ := graph.RelabelNodes(g, perm).MarshalBinary()

		b.Run(fmt.Sprintf("cold-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				srv := serve.New(serve.Config{})
				benchPost(b, srv.Handler(), body)
				srv.Close()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})

		b.Run(fmt.Sprintf("warm-n%d", n), func(b *testing.B) {
			st, _, err := store.Open(b.TempDir(), nil)
			if err != nil {
				b.Fatal(err)
			}
			srv := serve.New(serve.Config{Store: st, MemoSize: 1})
			defer srv.Close()
			h := srv.Handler()
			benchPost(b, h, body) // populate the store
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					benchPost(b, h, warmA)
				} else {
					benchPost(b, h, warmB)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})

		b.Run(fmt.Sprintf("hot-n%d", n), func(b *testing.B) {
			srv := serve.New(serve.Config{})
			defer srv.Close()
			h := srv.Handler()
			benchPost(b, h, body) // populate the memo
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, h, body)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
