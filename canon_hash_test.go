package election

// Property tests for the canonical graph hash (internal/canon), the
// content address of the advice service's persistent cache. They reuse
// the metamorphic machinery: the hash must be exactly invariant under
// node relabelings (isomorphic graphs share a cache entry), must
// separate the feasible families from each other (no false sharing),
// and must move when the anonymous structure itself moves (a port
// permutation — the metamorphic suite's negative control). The cache
// contract that makes warm hits safe is pinned end to end: equal hash
// across a relabeling ⟹ bit-identical advice.

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/canon"
	"repro/internal/graph"
)

func TestCanonicalHashRelabelInvariant(t *testing.T) {
	for name, g := range metamorphicFamilies() {
		want := canon.Hash(g)
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g2 := graph.RelabelNodes(g, rng.Perm(g.N()))
			if got := canon.Hash(g2); got != want {
				t.Errorf("%s: hash changed under relabeling (seed %d): %s != %s",
					name, seed, got, want)
			}
		}
	}
}

func TestCanonicalHashSeparatesFamilies(t *testing.T) {
	seen := map[canon.Sum]string{}
	for name, g := range metamorphicFamilies() {
		h := canon.Hash(g)
		if prev, ok := seen[h]; ok {
			t.Errorf("%s and %s share a canonical hash", name, prev)
		}
		seen[h] = name
	}
	// Same family, different size must separate too.
	if canon.Hash(Grid(4, 3)) == canon.Hash(Grid(4, 4)) {
		t.Error("grids of different sizes share a canonical hash")
	}
}

// A per-node port permutation changes the anonymous structure (views
// encode port numbers), so unlike a relabeling it must change the
// hash: the canonical torus is infeasible, its port-shuffled copy is
// feasible, and the hash sees the difference.
func TestCanonicalHashPortPermutationNegativeControl(t *testing.T) {
	g := Torus(3, 3)
	shuffled := ShufflePorts(g, 7)
	if canon.Hash(g) == canon.Hash(shuffled) {
		t.Error("port permutation left the canonical hash unchanged")
	}
}

// Equal hash across a relabeling must mean bit-identical advice — the
// exact property that makes the service's warm cache hits safe.
func TestCanonicalHashImpliesSharedAdvice(t *testing.T) {
	g := metamorphicFamilies()["hairy"]
	rng := rand.New(rand.NewSource(42))
	g2 := graph.RelabelNodes(g, rng.Perm(g.N()))
	if canon.Hash(g) != canon.Hash(g2) {
		t.Fatal("relabeled graph hashes differently")
	}
	_, enc1, err := NewSystem().ComputeAdvice(g)
	if err != nil {
		t.Fatal(err)
	}
	_, enc2, err := NewSystem().ComputeAdvice(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !bits.Equal(enc1, enc2) {
		t.Error("hash-equal graphs produced different advice bits")
	}
}
