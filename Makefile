# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint repolint vet tidy-check bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = everything the CI lint job gates on that runs offline.
# staticcheck/govulncheck run too when installed (CI installs them;
# the dev container may not have network access).
lint: vet repolint tidy-check
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

vet:
	$(GO) vet ./...

# The project's own analyzer suite (DESIGN.md §11), both standalone and
# as a vettool so the unitchecker protocol stays exercised.
repolint:
	$(GO) run ./cmd/repolint ./...
	$(GO) build -o $(CURDIR)/bin/repolint ./cmd/repolint
	$(GO) vet -vettool=$(CURDIR)/bin/repolint ./...

tidy-check:
	$(GO) mod tidy
	@git diff --exit-code go.mod || (echo "go.mod not tidy: run 'go mod tidy'"; exit 1)

bench-smoke:
	$(GO) run ./cmd/bench -bench 'BenchmarkElectionIndex$$' -benchtime 1x -out /tmp/BENCH_smoke.json -v
