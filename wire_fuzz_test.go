package election

// Native fuzz targets for the advice service's two binary decoders
// (DESIGN.md §8): the graph wire codec and the store's page decoder.
// Both decoders are promised total — any byte string yields an error,
// never a panic — and on accepted inputs the usual round-trip laws
// hold. The committed corpus (testdata/fuzz/...) seeds valid
// encodings of every construction family so the mutators start from
// deep inside the accept set, not from junk that dies at the magic.

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
)

func FuzzGraphWireCodec(f *testing.F) {
	// Valid encodings of the construction families, via the same
	// decoder the election fuzzers use.
	fuzzSeeds(f) // raw family selectors: junk to the wire decoder, cheap to keep
	for kind := 0; kind < 12; kind++ {
		g, _ := decodeFuzzGraph([]byte{byte('0' + kind), '1', '2', '3', '4', '5'})
		if g == nil {
			continue
		}
		enc, _ := g.MarshalBinary()
		f.Add(enc)
		// And a truncation, so the mutator sees a near-miss.
		f.Add(enc[:len(enc)-1])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := graph.UnmarshalBinary(data)
		if err != nil {
			return // rejected, totally
		}
		// Accepted graphs re-encode canonically and round trip exactly.
		enc, _ := g.MarshalBinary()
		g2, err := graph.UnmarshalBinary(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed size: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
		for v := 0; v < g.N(); v++ {
			for p := 0; p < g.Deg(v); p++ {
				if g.At(v, p) != g2.At(v, p) {
					t.Fatalf("round trip changed adjacency at node %d port %d", v, p)
				}
			}
		}
		enc2, _ := g2.MarshalBinary()
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

func FuzzStorePage(f *testing.F) {
	// Valid pages, obtained by committing entries through the real
	// store and reading the files back.
	dir := f.TempDir()
	s, _, err := store.Open(dir, nil)
	if err != nil {
		f.Fatal(err)
	}
	var key store.Key
	for i := range key {
		key[i] = byte(i)
	}
	entryPath := filepath.Join(dir, hex.EncodeToString(key[:])+".adv")
	for _, size := range []int{0, 5, store.PayloadCap, store.PayloadCap + 1} {
		val := bytes.Repeat([]byte{0x6B}, size)
		if err := s.Put(key, val); err != nil {
			f.Fatal(err)
		}
		enc, err := os.ReadFile(entryPath)
		if err != nil {
			f.Fatal(err)
		}
		for off := 0; off < len(enc); off += store.PageSize {
			f.Add(enc[off : off+store.PageSize])
		}
		// A bit-flipped page too, so the mutator starts at a checksum
		// near-miss.
		flipped := append([]byte(nil), enc[:store.PageSize]...)
		flipped[store.PageSize/2] ^= 1
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, page []byte) {
		h, payload, err := store.DecodePage(page)
		if err != nil {
			return // rejected, totally
		}
		// Accepted pages must satisfy the decoder's own contract.
		if len(page) != store.PageSize {
			t.Fatalf("accepted a %d-byte page", len(page))
		}
		if len(payload) != int(h.PayloadLen) || int(h.PayloadLen) > store.PayloadCap {
			t.Fatalf("payload %d bytes, header says %d (cap %d)", len(payload), h.PayloadLen, store.PayloadCap)
		}
		if !h.Last && int(h.PayloadLen) != store.PayloadCap {
			t.Fatal("interior page accepted short")
		}
	})
}
