package election

import (
	"testing"
)

// Deep election indices: the lollipop(3, t) family reaches φ up to ~10,
// exercising every E2 level of the trie machinery and all four
// milestones' arithmetic end to end.
func TestDeepPhiSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for _, tail := range []int{6, 10, 14, 18, 22} {
		g := Lollipop(3, tail)
		s := NewSystem()
		phi, ok := s.ElectionIndex(g)
		if !ok {
			t.Fatalf("tail %d: infeasible", tail)
		}
		res, err := s.RunMinTime(g, Options{})
		if err != nil {
			t.Fatalf("tail %d: %v", tail, err)
		}
		if res.Time != phi {
			t.Errorf("tail %d: time %d != phi %d", tail, res.Time, phi)
		}
		for i := 1; i <= 4; i++ {
			r, err := s.RunMilestone(g, i, Options{})
			if err != nil {
				t.Fatalf("tail %d milestone %d: %v", tail, i, err)
			}
			if r.Leader != res.Leader {
				t.Errorf("tail %d milestone %d: different leader", tail, i)
			}
		}
	}
}

// φ grows monotonically with the tail on this family — the knob the
// tradeoff example and the milestone experiments rely on.
func TestLollipopPhiGrows(t *testing.T) {
	s := NewSystem()
	prev := 0
	for _, tail := range []int{2, 6, 10, 14} {
		phi, ok := s.ElectionIndex(Lollipop(3, tail))
		if !ok {
			t.Fatal("infeasible")
		}
		if phi < prev {
			t.Errorf("phi decreased: %d after %d", phi, prev)
		}
		prev = phi
	}
	if prev < 4 {
		t.Errorf("family does not reach deep phi: max %d", prev)
	}
}

// Stress: a larger network end to end on all three engines.
func TestStressLargerNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("stress is slow")
	}
	g := RandomConnected(300, 200, 17)
	s := NewSystem()
	phi, ok := s.ElectionIndex(g)
	if !ok {
		t.Skip("unlucky sample")
	}
	seq, err := s.RunMinTime(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := s.RunMinTime(g, Options{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Leader != conc.Leader || seq.Time != phi || conc.Time != phi {
		t.Error("engines disagree at scale")
	}
	gen, err := s.RunGeneric(g, phi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Time > g.Diameter()+phi+1 {
		t.Errorf("Generic too slow at scale: %d", gen.Time)
	}
}

// All feasible generator outputs elect successfully; all symmetric ones
// are rejected — a catalog-level regression test.
func TestGeneratorCatalog(t *testing.T) {
	feasible := map[string]*Graph{
		"path7":       Path(7),
		"lollipop":    Lollipop(5, 4),
		"grid43":      Grid(4, 3),
		"k23":         CompleteBipartite(2, 3),
		"wheeltail":   WheelWithTail(5, 2),
		"broom":       Broom(3, 4),
		"caterpillar": Caterpillar([]int{2, 0, 1, 3}),
		"hairy":       BuildHairyRing([]int{1, 0, 2, 0}).G,
		// Port numbers break the topological symmetry of these three:
		// the canonical port assignments encode node positions.
		"binarytree": BinaryTree(3),
		"wheel":      Wheel(5),
		"clique":     Clique(5),
	}
	infeasible := map[string]*Graph{
		"ring":      Ring(8),
		"hypercube": Hypercube(3),
		"torus":     Torus(3, 3),
	}
	s := NewSystem()
	for name, g := range feasible {
		if !s.Feasible(g) {
			t.Errorf("%s should be feasible", name)
			continue
		}
		if _, err := s.RunMinTime(g, Options{}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for name, g := range infeasible {
		if s.Feasible(g) {
			t.Errorf("%s should be infeasible", name)
		}
	}
}
