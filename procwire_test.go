package election

// Real-process differential for the multi-process sharded deployment
// (DESIGN.md §12): the election pipeline supervised by shard.RunProc
// over actual shardd worker processes — graph and advice staged as
// files, boundary traffic over loopback sockets, views shipped across
// process boundaries, journals on disk — must stay bit-identical to the
// single-process BSP engine, clean, under seeded chaos schedules, and
// across a SIGKILL of a live worker mid-round.
import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

var (
	sharddOnce sync.Once
	sharddBin  string
	sharddErr  error
)

// buildShardd compiles the worker binary once per test-binary run, into
// a temp dir that deliberately outlives any single test (every
// proc-wire test shares the artifact).
func buildShardd(tb testing.TB) string {
	tb.Helper()
	sharddOnce.Do(func() {
		dir, err := os.MkdirTemp("", "shardd-bin-*")
		if err != nil {
			sharddErr = err
			return
		}
		bin := filepath.Join(dir, "shardd")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/shardd").CombinedOutput()
		if err != nil {
			sharddErr = fmt.Errorf("build shardd: %v\n%s", err, out)
			return
		}
		sharddBin = bin
	})
	if sharddErr != nil {
		tb.Fatal(sharddErr)
	}
	return sharddBin
}

// procHarness stages one multi-process run: graph and advice files,
// data-plane addresses, journal dir, and the Start hook that spawns
// shardd processes (tracked so tests can SIGKILL them and cleanup can
// reap leftovers).
type procHarness struct {
	tb                             testing.TB
	g                              *Graph
	bin, dir                       string
	graphPath, advPath, journalDir string
	network                        string
	shards                         int
	addrs                          []string
	chaosSpec                      string
	chaosBase                      int64
	roundTimeout                   time.Duration // 0 = engine default; raise for n=100k-scale exchanges

	mu   sync.Mutex
	cmds map[int][]*exec.Cmd // shard → incarnations, in start order
}

func newProcHarness(tb testing.TB, g *Graph, adv Bits, shards int, network, chaosSpec string, chaosBase int64) *procHarness {
	tb.Helper()
	h := &procHarness{tb: tb, g: g, bin: buildShardd(tb), network: network,
		shards: shards, chaosSpec: chaosSpec, chaosBase: chaosBase, cmds: map[int][]*exec.Cmd{}}
	// Short staging path: unix socket addresses live here and must fit
	// the 108-byte sockaddr_un limit (t.TempDir paths can exceed it).
	dir, err := os.MkdirTemp("", "procwire-*")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { os.RemoveAll(dir) })
	tb.Cleanup(h.killAll) // runs before the dir removal
	h.dir = dir
	h.graphPath = filepath.Join(dir, "graph.bin")
	if err := graph.SaveBinaryFile(g, h.graphPath); err != nil {
		tb.Fatal(err)
	}
	h.advPath = filepath.Join(dir, "advice.txt")
	if err := os.WriteFile(h.advPath, []byte(adv.String()), 0o644); err != nil {
		tb.Fatal(err)
	}
	h.journalDir = filepath.Join(dir, "journal")
	h.addrs = make([]string, shards)
	for s := range h.addrs {
		if network == "unix" {
			h.addrs[s] = filepath.Join(dir, fmt.Sprintf("d%d.sock", s))
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		h.addrs[s] = ln.Addr().String()
		ln.Close()
	}
	return h
}

// start is the shard.RunProc hook: spawn one shardd incarnation.
func (h *procHarness) start(shardIdx, inc int, ctrlAddr string) error {
	args := []string{
		"-shard", strconv.Itoa(shardIdx), "-shards", strconv.Itoa(h.shards), "-inc", strconv.Itoa(inc),
		"-graph", h.graphPath, "-advice", h.advPath,
		"-network", h.network, "-sup", ctrlAddr, "-peers", strings.Join(h.addrs, ","),
		"-journal", h.journalDir,
	}
	if h.roundTimeout > 0 {
		args = append(args, "-round-timeout", h.roundTimeout.String())
	}
	if h.chaosSpec != "" {
		args = append(args, "-chaos", h.chaosSpec,
			"-chaos-seed", strconv.FormatInt(h.chaosBase^int64(shardIdx)*0x9E3779B9, 10))
	}
	cmd := exec.Command(h.bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	h.mu.Lock()
	h.cmds[shardIdx] = append(h.cmds[shardIdx], cmd)
	h.mu.Unlock()
	go cmd.Wait() //nolint:errcheck // reaped for the zombie; exit status travels on the ctrl conn
	return nil
}

// run supervises the staged workers to completion.
func (h *procHarness) run() (*sim.Result, *shard.Stats, error) {
	listen := "127.0.0.1:0"
	if h.network == "unix" {
		listen = filepath.Join(h.dir, "ctrl.sock")
	}
	return shard.RunProc(context.Background(), h.g, shard.ProcOptions{
		Shards: h.shards, Network: h.network, Listen: listen, Start: h.start,
	})
}

// killAll SIGKILLs every worker this harness ever started; normal runs
// have already-exited processes and the kill is a no-op.
func (h *procHarness) killAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, incs := range h.cmds {
		for _, cmd := range incs {
			if cmd.Process != nil {
				cmd.Process.Kill() //nolint:errcheck // best-effort reaping
			}
		}
	}
}

// killAfterCheckpoint SIGKILLs the victim shard's newest incarnation
// once its checkpoint for round lands on disk — proof the worker is
// live and mid-run. The buffered channel reports whether a kill
// happened; cancel stops the polling.
func (h *procHarness) killAfterCheckpoint(victim, round int) (<-chan bool, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	killed := make(chan bool, 1)
	go func() {
		target := filepath.Join(h.journalDir, fmt.Sprintf("s%d", victim), fmt.Sprintf("ck-%d.rec", round))
		for ctx.Err() == nil {
			if _, err := os.Stat(target); err == nil {
				h.mu.Lock()
				incs := h.cmds[victim]
				var proc *os.Process
				if len(incs) > 0 {
					proc = incs[len(incs)-1].Process
				}
				h.mu.Unlock()
				if proc != nil {
					proc.Kill() //nolint:errcheck // SIGKILL, no second chances
					killed <- true
				}
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return killed, cancel
}

// requireSameProcRun asserts a multi-process run against the in-process
// election reference: same Time, Messages, per-node Rounds and Outputs,
// and the outputs must verify to the same leader.
func requireSameProcRun(tb testing.TB, label string, g *Graph, ref *Result, res *sim.Result) {
	tb.Helper()
	if res.Time != ref.Time {
		tb.Errorf("%s: time=%d, reference has %d", label, res.Time, ref.Time)
	}
	if res.Messages != ref.Messages {
		tb.Errorf("%s: messages=%d, reference has %d", label, res.Messages, ref.Messages)
	}
	if !reflect.DeepEqual(res.Rounds, ref.Rounds) {
		tb.Errorf("%s: per-node rounds differ from the reference", label)
	}
	if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
		tb.Errorf("%s: per-node outputs differ from the reference", label)
	}
	leader, err := sim.Verify(g, res.Outputs)
	if err != nil {
		tb.Errorf("%s: outputs fail verification: %v", label, err)
	} else if leader != ref.Leader {
		tb.Errorf("%s: leader=%d, reference elected %d", label, leader, ref.Leader)
	}
}

// TestProcWireDifferential runs the full minimum-time pipeline across
// real shardd worker processes on every feasible family — tcp for 2
// shards, unix for 3, so both socket families stay covered — against
// the single-process BSP reference.
func TestProcWireDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	for name, g := range equivalenceFamilies() {
		s := NewSystem()
		if !s.Feasible(g) {
			continue
		}
		_, enc, err := s.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := s.RunElect(g, enc, Options{})
		if err != nil {
			t.Fatalf("%s/bsp: %v", name, err)
		}
		for _, shards := range shardCounts {
			network := "tcp"
			if shards == 3 {
				network = "unix"
			}
			label := fmt.Sprintf("%s/%s/shards=%d", name, network, shards)
			h := newProcHarness(t, g, enc, shards, network, "", 0)
			res, stats, err := h.run()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireSameProcRun(t, label, g, ref, res)
			if stats.Crashes != 0 || stats.Recoveries != 0 {
				t.Errorf("%s: clean run stats = %+v", label, stats)
			}
		}
	}
}

// TestProcWireChaos replays seeded chaos schedules — protocol faults
// and socket faults, injected inside the worker processes via -chaos —
// over real loopback connections on a subset of families.
func TestProcWireChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	families := equivalenceFamilies()
	for _, name := range []string{"hairy", "gk-member", "grid"} {
		g := families[name]
		s := NewSystem()
		if !s.Feasible(g) {
			t.Fatalf("%s: chaos subset family is infeasible", name)
		}
		_, enc, err := s.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := s.RunElect(g, enc, Options{})
		if err != nil {
			t.Fatalf("%s/bsp: %v", name, err)
		}
		const shards = 3
		for _, network := range []string{"tcp", "unix"} {
			for seed := int64(1); seed <= 2; seed++ {
				spec := shard.SeededChaosSpec(seed, shards)
				label := fmt.Sprintf("%s/%s/chaos=%d [%s]", name, network, seed, spec)
				h := newProcHarness(t, g, enc, shards, network, spec, seed)
				res, stats, err := h.run()
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				requireSameProcRun(t, label, g, ref, res)
				// A crash in the final rounds can finish without the
				// replacement's Recovered frame, so only the upper
				// bound is deterministic.
				if stats.Recoveries > stats.Crashes {
					t.Errorf("%s: %d recoveries exceed %d crashes", label, stats.Recoveries, stats.Crashes)
				}
			}
		}
	}
}

// TestProcWireKillRestart is the crash-recovery acceptance test: a live
// shardd worker is SIGKILLed from outside mid-run — no injected exit,
// no warning — and the supervisor must detect the dead control
// connection, restart the worker with -inc bumped, replay its disk
// journal, and finish bit-identically.
func TestProcWireKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	// The hairy ring from electsim's generator at n=64 runs for ~31
	// rounds — a wide window to catch the victim past its round-2
	// checkpoint and kill it with most of the run still ahead.
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = i % 4
	}
	sizes[0] = 5
	g := BuildHairyRing(sizes).G
	s := NewSystem()
	if !s.Feasible(g) {
		t.Fatal("hairy ring is infeasible")
	}
	_, enc, err := s.ComputeAdvice(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.RunElect(g, enc, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const victim = 1
	h := newProcHarness(t, g, enc, 3, "tcp", "", 0)
	killed, stopPoll := h.killAfterCheckpoint(victim, 2)
	defer stopPoll()

	res, stats, err := h.run()
	stopPoll()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-killed:
	default:
		t.Fatal("run finished before the victim's round-2 checkpoint appeared; nothing was killed")
	}
	requireSameProcRun(t, "kill-restart", g, ref, res)
	if stats.Crashes < 1 || stats.Recoveries < 1 {
		t.Errorf("kill-restart stats = %+v, want at least one crash and one recovery", stats)
	}
	h.mu.Lock()
	victimIncs := len(h.cmds[victim])
	h.mu.Unlock()
	if victimIncs < 2 {
		t.Errorf("victim shard was started %d times, want a restart", victimIncs)
	}
}
