package election

// Native fuzz targets (DESIGN.md §7). A fuzzer byte string decodes to a
// small connected port-labeled graph plus a delay seed — the first byte
// selects a construction family, the rest parameterize it — so the
// committed corpus (testdata/fuzz/...) covers every family shape while
// the mutator explores sizes, codes, shuffles and schedules.
//
//	FuzzElectionConformance: the part and view engines must agree on
//	φ/feasibility, and the BSP, sequential and asynchronous engines
//	must elect identically on every instance.
//	FuzzAdviceRoundTrip: Encode∘Decode is the identity on oracle
//	advice, and Decode never panics on arbitrary bit strings.

import (
	"reflect"
	"testing"

	"repro/internal/advice"
	"repro/internal/bits"
)

// byteGraph builds a connected simple graph on n nodes directly from
// fuzzer bytes: a spanning tree (each node's parent picked by a byte)
// plus byte-picked extra edges, with ports assigned per node in edge
// insertion order — always a valid port labeling.
func byteGraph(n int, data []byte) *Graph {
	type edge struct{ u, v int }
	seen := map[edge]bool{}
	var edges []edge
	add := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[edge{u, v}] {
			return
		}
		seen[edge{u, v}] = true
		edges = append(edges, edge{u, v})
	}
	next := func(i int) int {
		if len(data) == 0 {
			return 7 * (i + 1)
		}
		return int(data[i%len(data)]) + i
	}
	for v := 1; v < n; v++ {
		add(next(v)%v, v)
	}
	extras := n / 2
	for i := 0; i < extras; i++ {
		add(next(2*i+n)%n, next(2*i+n+1)%n)
	}
	b := NewBuilder(n)
	ports := make([]int, n)
	for _, e := range edges {
		b.AddEdge(e.u, ports[e.u], e.v, ports[e.v])
		ports[e.u]++
		ports[e.v]++
	}
	g, err := b.Finalize()
	if err != nil {
		return nil // unreachable by construction; reject defensively
	}
	return g
}

// decodeFuzzGraph maps a fuzzer byte string to (graph, delay seed), or
// nil to reject the input. Every branch keeps its parameters inside
// the constructors' documented ranges so no input can panic.
func decodeFuzzGraph(data []byte) (*Graph, int64) {
	if len(data) < 2 {
		return nil, 0
	}
	kind, b1 := int(data[0])%12, int(data[1])
	seed := int64(b1)
	arg := func(i int) int {
		if 2+i < len(data) {
			return int(data[2+i])
		}
		return i + 1
	}
	switch kind {
	case 0:
		return byteGraph(3+arg(0)%10, data[2:]), seed
	case 1:
		return Lollipop(3+arg(0)%3, 1+arg(1)%3), seed
	case 2:
		sizes := make([]int, 3+arg(0)%4)
		for i := range sizes {
			sizes[i] = arg(i+1) % 4
		}
		max := 0
		for _, k := range sizes {
			if k > max {
				max = k
			}
		}
		sizes[arg(0)%len(sizes)] = max + 1 // unique maximum: feasibility
		return BuildHairyRing(sizes).G, seed
	case 3:
		return BuildNecklace(4, 3, 2+arg(0)%2, NecklaceCode(4, 3, arg(1)%NecklaceCodeCount(4, 3))).G, seed
	case 4:
		return BuildHk(3+arg(0)%3, 3).G, seed
	case 5:
		return Grid(2+arg(0)%3, 2+arg(1)%3), seed
	case 6:
		legs := make([]int, 2+arg(0)%4)
		for i := range legs {
			legs[i] = arg(i+1) % 3
		}
		return Caterpillar(legs), seed
	case 7:
		return WheelWithTail(3+arg(0)%4, 1+arg(1)%3), seed
	case 8:
		return Broom(2+arg(0)%3, 1+arg(1)%3), seed
	case 9:
		return ShufflePorts(Torus(3, 3+arg(0)%2), int64(arg(1))), seed
	case 10:
		return ShufflePorts(Hypercube(2+arg(0)%2), int64(arg(1))), seed
	case 11:
		return BuildS0Member(1, 2, arg(0)%3).G, seed
	}
	return nil, 0
}

// fuzzSeeds registers one representative of every decoder family, the
// same instances the committed corpus files pin.
func fuzzSeeds(f *testing.F) {
	for kind := byte('0'); kind <= '9'; kind++ {
		f.Add([]byte{kind, '1', '2', '3', '4', '5'})
	}
	f.Add([]byte{':', '1', '2', '3', '4', '5'}) // kind 10
	f.Add([]byte{';', '1', '2', '3', '4', '5'}) // kind 11
}

func FuzzElectionConformance(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, seed := decodeFuzzGraph(data)
		if g == nil || g.N() > 64 {
			return
		}
		sPart, sView := NewSystem(), NewSystemWith(EngineView)
		phi1, ok1 := sPart.ElectionIndex(g)
		phi2, ok2 := sView.ElectionIndex(g)
		if phi1 != phi2 || ok1 != ok2 {
			t.Fatalf("engines disagree on the election index: part (%d,%v) vs view (%d,%v)", phi1, ok1, phi2, ok2)
		}
		if !ok1 || g.N() < 3 {
			return
		}
		_, enc, err := sPart.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("ComputeAdvice: %v", err)
		}
		ref, err := sPart.RunElect(g, enc, Options{})
		if err != nil {
			t.Fatalf("bsp: %v", err)
		}
		if ref.Time != phi1 {
			t.Fatalf("min-time election took %d rounds, φ = %d", ref.Time, phi1)
		}
		inCut := make([]bool, g.N())
		for v := 0; v < g.N()/2; v++ {
			inCut[v] = true
		}
		for name, o := range map[string]Options{
			"seq":           {Engine: SimSequential},
			"async-uniform": {Async: true, AsyncSeed: seed},
			"async-slowcut": {Async: true, AsyncSeed: seed, Delay: NewSlowCutDelay(inCut, 9, 0.1)},
		} {
			res, err := sPart.RunElect(g, enc, o)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			requireSameElection(t, name, ref, res)
		}
	})
}

func FuzzAdviceRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must tolerate arbitrary bit strings without panicking
		// (errors are the expected outcome).
		var w bits.Writer
		for _, b := range data {
			w.WriteBits(uint64(b), 8)
		}
		_, _ = advice.Decode(w.String())

		g, _ := decodeFuzzGraph(data)
		if g == nil || g.N() < 3 || g.N() > 64 {
			return
		}
		s := NewSystem()
		if !s.Feasible(g) {
			return
		}
		a, enc, err := s.ComputeAdvice(g)
		if err != nil {
			t.Fatalf("ComputeAdvice: %v", err)
		}
		dec, err := advice.Decode(enc)
		if err != nil {
			t.Fatalf("Decode of fresh advice: %v", err)
		}
		if dec.Phi != a.Phi {
			t.Fatalf("round trip changed φ: %d -> %d", a.Phi, dec.Phi)
		}
		if !reflect.DeepEqual(dec.Tree, a.Tree) {
			t.Fatal("round trip changed the advice tree")
		}
		if re := dec.Encode(); !bits.Equal(re, enc) {
			t.Fatalf("re-encode differs: %d bits vs %d", re.Len(), enc.Len())
		}
	})
}

// decodeFuzzGraph must itself be total on the corpus shapes: every
// family kind yields a valid graph for a spread of parameter bytes.
func TestFuzzDecoderTotal(t *testing.T) {
	for kind := 0; kind < 12; kind++ {
		for b := 0; b < 256; b += 17 {
			data := []byte{byte(kind), byte(b), byte(b / 2), byte(255 - b), byte(b), byte(3 * b)}
			g, _ := decodeFuzzGraph(data)
			if g == nil {
				t.Fatalf("kind %d rejected bytes %v", kind, data)
			}
			if !g.Connected() {
				t.Fatalf("kind %d built a disconnected graph", kind)
			}
		}
	}
}
