// Package election is a complete implementation of deterministic leader
// election with advice in anonymous networks, reproducing
//
//	Yoann Dieudonné and Andrzej Pelc,
//	"Impact of Knowledge on Election Time in Anonymous Networks",
//	SPAA 2017 (arXiv:1604.05023).
//
// Networks are simple connected graphs whose nodes are anonymous but
// whose edges carry a local port number at each endpoint. Leader election
// means every node outputs a port sequence describing a simple path to a
// common node, the leader. The package provides:
//
//   - the graph model and generators (NewBuilder, Ring, Clique, ...);
//   - augmented truncated views and the election index φ(G)
//     (ElectionIndex, Feasible);
//   - the oracle advice of Theorem 3.1 and the minimum-time election
//     algorithm Elect (ComputeAdvice, RunMinTime);
//   - the large-time algorithms Generic(x) and Election1..4 of Section 4
//     (RunGeneric, RunMilestone, RunFullMap, RunDPlusPhi);
//   - every lower-bound family of the paper (see families.go);
//   - a LOCAL-model simulator with a goroutine-per-node engine.
//
// A System owns the view-interning state; create one per workload with
// NewSystem and use it for all operations on related graphs.
package election

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/advice"
	"repro/internal/algorithms"
	"repro/internal/bits"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/sim"
	"repro/internal/sim/shard"
	"repro/internal/view"
)

// Graph is an anonymous port-labeled network (see internal/graph).
type Graph = graph.Graph

// Builder assembles a Graph edge by edge.
type Builder = graph.Builder

// Bits is an immutable bit string; advice sizes are Bits lengths.
type Bits = bits.String

// BitsFromString parses a Bits value from a "0101" textual form.
var BitsFromString = bits.New

// Advice is the decoded oracle advice of Algorithm ComputeAdvice.
type Advice = advice.Advice

// Re-exported generators.
var (
	NewBuilder        = graph.NewBuilder
	Ring              = graph.Ring
	Path              = graph.Path
	Clique            = graph.Clique
	Star              = graph.Star
	CompleteBipartite = graph.CompleteBipartite
	Grid              = graph.Grid
	Hypercube         = graph.Hypercube
	Lollipop          = graph.Lollipop
	RandomConnected   = graph.RandomConnected
	ShufflePorts      = graph.ShufflePorts
	Isomorphic        = graph.Isomorphic
	Torus             = graph.Torus
	BinaryTree        = graph.BinaryTree
	Caterpillar       = graph.Caterpillar
	Wheel             = graph.Wheel
	WheelWithTail     = graph.WheelWithTail
	Broom             = graph.Broom

	// Streaming (map-free, single-slab) constructors, bit-identical to
	// their Builder-based counterparts above — the entry points for
	// million-node instances, where the Builder's per-edge map
	// bookkeeping would exhaust memory before refinement starts.
	RandomConnectedStream = graph.RandomConnectedStream
	ShufflePortsStream    = graph.ShufflePortsStream
	TorusStream           = graph.TorusStream
	HypercubeStream       = graph.HypercubeStream
	GridStream            = graph.GridStream
)

// Engine selects how the partition-level quantities — the election
// index φ, feasibility, and the stable partition — are computed.
type Engine int

const (
	// EnginePart is the view-free partition-refinement engine
	// (internal/part): zero interning, zero hashing, O(n+m) per depth.
	// It is the default and scales to graphs two orders of magnitude
	// larger than the view path.
	EnginePart Engine = iota
	// EngineView is the legacy interned-view refinement
	// (view.Refinement). Both engines are bit-identical (pinned by the
	// equivalence property tests in internal/part); EngineView remains
	// selectable for cross-checking and profiling comparisons.
	EngineView
)

// System owns the shared view-interning table used by the oracle and the
// simulated nodes, plus the engine choice for partition-level
// computations. It is safe for concurrent use. The table is created on
// first use: purely partition-level workloads (ElectionIndex, Feasible,
// StablePartition under EnginePart) never allocate interning state.
type System struct {
	tabOnce sync.Once
	tab     *view.Table
	engine  Engine
}

// NewSystem returns a fresh System using the view-free partition engine.
func NewSystem() *System { return NewSystemWith(EnginePart) }

// NewSystemWith returns a fresh System computing φ, feasibility and
// stable partitions with the given engine.
func NewSystemWith(e Engine) *System {
	return &System{engine: e}
}

// table returns the lazily-created view-interning table.
func (s *System) table() *view.Table {
	s.tabOnce.Do(func() { s.tab = view.NewTable() })
	return s.tab
}

// ElectionIndex returns φ(g) and whether g is feasible (Proposition 2.1):
// φ is the smallest depth at which the augmented truncated views of all
// nodes are distinct, and is the minimum time in which leader election
// can be performed when the map of g is known.
func (s *System) ElectionIndex(g *Graph) (phi int, feasible bool) {
	phi, feasible, _ = s.ElectionIndexCtx(context.Background(), g)
	return phi, feasible
}

// ElectionIndexCtx is ElectionIndex with a cancellation checkpoint per
// refinement depth (EnginePart only; the legacy view engine is a
// cross-checking fixture and runs uninterrupted).
func (s *System) ElectionIndexCtx(ctx context.Context, g *Graph) (phi int, feasible bool, err error) {
	if s.engine == EngineView {
		phi, feasible = view.ElectionIndex(s.table(), g)
		return phi, feasible, nil
	}
	return part.ElectionIndexCtx(ctx, g)
}

// StablePartitionCtx is StablePartition with a cancellation checkpoint
// per refinement depth (EnginePart only).
func (s *System) StablePartitionCtx(ctx context.Context, g *Graph) (classes []int, depth int, err error) {
	if s.engine == EngineView {
		classes, depth = view.StablePartition(s.table(), g)
		return classes, depth, nil
	}
	return part.StablePartitionCtx(ctx, g)
}

// Feasible reports whether leader election is at all possible in g.
func (s *System) Feasible(g *Graph) bool {
	if s.engine == EngineView {
		return view.Feasible(s.table(), g)
	}
	return part.Feasible(g)
}

// ComputeAdvice runs the oracle of Theorem 3.1 and returns the advice
// both decoded and encoded; the encoded length is O(n log n) bits.
func (s *System) ComputeAdvice(g *Graph) (*Advice, Bits, error) {
	return s.ComputeAdviceCtx(context.Background(), g)
}

// ComputeAdviceCtx is ComputeAdvice under a context: the oracle checks
// for cancellation at every materialization depth, every trie level and
// before the final label sweep, so a per-request timeout (the advice
// service's, internal/serve) actually stops oracle work.
func (s *System) ComputeAdviceCtx(ctx context.Context, g *Graph) (*Advice, Bits, error) {
	o := advice.NewOracle(s.table())
	a, err := o.ComputeAdviceCtx(ctx, g)
	if err != nil {
		return nil, Bits{}, err
	}
	return a, a.Encode(), nil
}

// SimEngine selects the synchronous round engine for a run. All engines
// are observationally identical (same Outputs, Rounds, Time, Messages);
// they differ only in how a round is realized.
type SimEngine int

const (
	// SimBSP is the default: the bulk-synchronous class-sharing engine
	// (sim.RunBSP) — one part.Refiner step and one interned view per
	// view class per round, Decide sweep over a worker pool. It is the
	// engine that carries end-to-end elections to 100k-node graphs.
	SimBSP SimEngine = iota
	// SimSequential is the per-node deterministic loop, kept as the
	// reference the class-sharing engine is pinned against.
	SimSequential
)

// Options configures a simulation run. The zero value selects the
// class-sharing bulk-synchronous engine with a generous round budget;
// the Concurrent/Async flags override Engine with the message-passing
// realizations (goroutine per node, event-driven asynchrony), and
// Shards > 1 with the crash-tolerant sharded BSP engine.
type Options struct {
	Engine     SimEngine  // synchronous engine: SimBSP (default) or SimSequential
	Workers    int        // BSP decide-sweep workers; 0 = GOMAXPROCS
	Concurrent bool       // one goroutine per node, channel message passing
	Wire       bool       // serialize every message to bits (concurrent only)
	Async      bool       // asynchronous network + time-stamp synchronizer
	AsyncSeed  int64      // message-delay seed for Async runs
	Delay      DelayModel // Async delay adversary; nil = uniform (0,1]
	MaxRounds  int        // 0 means a default proportional to the graph size

	// Shards, when > 1, runs the synchronous rounds on the sharded
	// crash-tolerant BSP engine (internal/sim/shard): each shard owns a
	// contiguous node range and exchanges only boundary class ids per
	// round. Outputs, Rounds, Time and Messages are bit-identical to the
	// single-process engine. Ignored by the Concurrent/Async/Sequential
	// realizations.
	Shards int
	// ShardFaults, when non-nil (and Shards > 1), wraps the boundary
	// transport in a fault injector with this schedule — drops, dups,
	// reorders, delays, link cuts and whole-shard crashes; see
	// NewFaultInjector and the shard fault categories. The run must
	// still produce bit-identical outputs or fail with ShardStuckError.
	ShardFaults *FaultInjector
	// ShardSeed drives the sharded engine's retry-backoff jitter.
	ShardSeed int64
	// ShardTransport, when non-nil (and Shards > 1), carries the
	// boundary traffic instead of the default in-process channel
	// transport — e.g. a NewShardNetGroup mesh of loopback TCP or unix
	// sockets. ShardFaults, when also set, wraps whichever transport
	// is in effect.
	ShardTransport ShardTransport
	// ShardJournal, when non-nil (and Shards > 1), records per-round
	// checkpoints and boundary payloads instead of the default
	// in-memory journal — e.g. a NewShardFileJournal directory whose
	// fsync-before-rename commits survive kill -9.
	ShardJournal ShardJournal

	// Context, when non-nil, bounds the run: the BSP engine checks it
	// at every round barrier and the asynchronous engine per logical
	// round (and periodically between events), so a deadline or cancel
	// aborts a runaway simulation cleanly instead of only erroring at
	// the MaxRounds budget. Nil means context.Background(). The
	// sequential and concurrent reference engines ignore it — they are
	// pinning fixtures, not serving paths.
	Context context.Context
}

// DelayModel is the asynchronous engine's adversary: it assigns a
// virtual in-flight time to every message (see internal/sim/delay.go).
// Decisions and logical rounds are invariant across models; virtual
// time and round skew are not.
type DelayModel = sim.DelayModel

// The delay models of the asynchronous engine, re-exported.
type (
	// UniformDelay draws delays uniformly from (0, 1] (the default).
	UniformDelay = sim.UniformDelay
	// ExponentialDelay draws memoryless delays with a given mean.
	ExponentialDelay = sim.ExponentialDelay
	// ParetoDelay draws heavy-tailed Pareto delays.
	ParetoDelay = sim.ParetoDelay
	// FixedEdgeDelay freezes one adversarial latency per directed edge.
	FixedEdgeDelay = sim.FixedEdgeDelay
	// FIFODelay constrains a base model so links deliver in send order.
	FIFODelay = sim.FIFODelay
	// SlowCutDelay starves every edge crossing a node cut.
	SlowCutDelay = sim.SlowCutDelay
)

var (
	// NewUniformDelay returns the default uniform-(0,1] model.
	NewUniformDelay = sim.NewUniformDelay
	// NewSlowCutDelay starves the cut between inCut and its complement.
	NewSlowCutDelay = sim.NewSlowCutDelay
	// DropDelay, returned by an adversarial model, loses the message.
	DropDelay = sim.Drop
)

// DelayModels returns one instance of every delay model, keyed by the
// names that electsim's -delay flag accepts — sim.AllDelayModels, the
// single registry the differential suites and benchmarks iterate.
func DelayModels(g *Graph) map[string]DelayModel { return sim.AllDelayModels(g) }

// StuckError is the asynchronous engine's typed diagnosis of a run that
// could not complete: the round budget tripped or the network quiesced
// with nodes undecided. It carries the stuck nodes' rounds and the
// pending-event count, so services and tests can branch on the failure
// shape instead of parsing a message (errors.As-able).
type StuckError = sim.StuckError

// FaultInjector is the countdown-budget / seeded-rate fault schedule
// shared by the store's chaos filesystem and the sharded engine's
// transport: arm a category ("transport.drop", a ShardCrashCat(s), ...)
// with a budget or a rate, and the consumer trips it per operation.
type FaultInjector = faults.Injector

// NewFaultInjector returns an all-pass injector whose rate draws are
// reproducible from seed.
var NewFaultInjector = faults.New

// Shard transport fault categories, and the derived per-shard /
// per-link category constructors.
const (
	ShardFaultDrop    = shard.FaultDrop
	ShardFaultDup     = shard.FaultDup
	ShardFaultReorder = shard.FaultReorder
	ShardFaultDelay   = shard.FaultDelay
)

var (
	// ShardCrashCat names the whole-shard crash category of shard s.
	ShardCrashCat = shard.CrashCat
	// ShardCutCat names the one-way link partition category a→b.
	ShardCutCat = shard.CutCat
	// SeededShardChaos builds a replayable moderate-chaos schedule:
	// drop/dup/reorder/delay rates plus seed-chosen crashes.
	SeededShardChaos = shard.SeededChaos
)

// ShardTransport is the sharded engine's boundary data plane: Send,
// shard-addressed Recv with timeout, per-shard Reset on restart. The
// default is an in-process channel mesh; NewShardNetGroup carries the
// same frames over real sockets.
type ShardTransport = shard.Transport

// ShardJournal is the sharded engine's crash-surviving record of
// per-round checkpoints and boundary payloads, replayed by a restarted
// shard. The default is in-memory (survives injected crashes within a
// process); NewShardFileJournal survives kill -9.
type ShardJournal = shard.Journal

// ShardNetGroup is a fully-connected mesh of per-shard socket
// endpoints over loopback TCP or unix sockets; Close it after the run.
type ShardNetGroup = shard.NetGroup

var (
	// NewShardNetGroup builds a ShardNetGroup: network is "tcp" or
	// "unix", dir holds unix socket files, inj (optional) injects
	// socket-layer faults.
	NewShardNetGroup = shard.NewNetGroup
	// NewShardFileJournal opens a disk-backed ShardJournal rooted at
	// dir (nil FS means the real filesystem): temp-file, fsync, rename
	// per record, CRC-checked on replay.
	NewShardFileJournal = shard.NewFileJournal
)

// ShardStats reports a sharded run's fault-tolerance economics:
// crashes observed, recoveries completed, total replay time, data
// resends. Returned on Result.ShardStats when Options.Shards > 1.
type ShardStats = shard.Stats

// ShardStuckError reports that a fault schedule made progress
// impossible (exchange timeout or restart budget exhausted). It wraps
// a *StuckError, so errors.As reaches both types.
type ShardStuckError = shard.ShardStuckError

// Result reports an election outcome.
type Result struct {
	Leader     int     // sim id of the elected node
	Time       int     // rounds until the last node decided
	AdviceBits int     // length of the advice string used
	Outputs    [][]int // per-node port sequences (p1, q1, ...)
	Rounds     []int   // per-node decision rounds
	Messages   int     // total messages exchanged
	WireBits   int     // total bits on the wire (Wire mode only)
	ClassViews int     // representative views interned (SimBSP/Async)

	// Async-only schedule measurements: the virtual time at which the
	// last node decided and the maximum observed logical-round spread
	// between the fastest node and the slowest undecided one.
	VirtualTime float64
	MaxSkew     int

	// ShardStats carries the sharded engine's crash/recovery accounting
	// (Options.Shards > 1 only; nil otherwise).
	ShardStats *ShardStats
}

func (s *System) run(g *Graph, f sim.Factory, adviceLen int, o Options) (*Result, error) {
	maxRounds := o.MaxRounds
	if maxRounds == 0 {
		maxRounds = sim.DefaultMaxRounds(g)
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var res *sim.Result
	var err error
	virtualTime, maxSkew := 0.0, 0
	var shardStats *ShardStats
	switch {
	case o.Async:
		var ar *sim.AsyncResult
		ar, err = sim.RunAsyncCtx(ctx, s.table(), g, f, maxRounds, o.AsyncSeed, o.Delay)
		if ar != nil {
			res = &ar.Result
			virtualTime, maxSkew = ar.VirtualTime, ar.MaxSkew
		}
	case o.Concurrent:
		res, err = sim.RunConcurrent(s.table(), g, f, maxRounds, o.Wire)
	case o.Engine == SimSequential:
		res, err = sim.RunSequential(s.table(), g, f, maxRounds)
	case o.Shards > 1:
		opt := shard.Options{Shards: o.Shards, MaxRounds: maxRounds, Seed: o.ShardSeed,
			Transport: o.ShardTransport, Journal: o.ShardJournal}
		if o.ShardFaults != nil {
			inner := o.ShardTransport
			if inner == nil {
				inner = shard.NewChanTransport(o.Shards)
			}
			opt.Transport = shard.NewFaultTransport(inner, o.ShardFaults)
		}
		res, shardStats, err = shard.RunCtx(ctx, s.table(), g, f, opt)
	default:
		res, err = sim.RunBSPCtx(ctx, s.table(), g, f, maxRounds, o.Workers)
	}
	if err != nil {
		return nil, err
	}
	leader, err := sim.Verify(g, res.Outputs)
	if err != nil {
		return nil, fmt.Errorf("election failed verification: %w", err)
	}
	return &Result{
		Leader: leader, Time: res.Time, AdviceBits: adviceLen,
		Outputs: res.Outputs, Rounds: res.Rounds,
		Messages: res.Messages, WireBits: res.WireBits,
		ClassViews:  res.ClassViews,
		VirtualTime: virtualTime, MaxSkew: maxSkew,
		ShardStats: shardStats,
	}, nil
}

// RunMinTime performs the complete Theorem 3.1 pipeline on g: the oracle
// computes O(n log n)-bit advice, every node runs Algorithm Elect, and
// the election completes in exactly φ(g) rounds. The oracle's decoded
// advice is handed to the factory directly — the advice is still encoded
// once to report its bit length (and the encode/decode round trip stays
// pinned by RunElect's tests), but the n deciders don't pay for a
// decode of their own.
func (s *System) RunMinTime(g *Graph, o Options) (*Result, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	a, enc, err := s.ComputeAdviceCtx(ctx, g)
	if err != nil {
		return nil, err
	}
	f := algorithms.NewElectFactoryDecoded(s.table(), a)
	return s.run(g, f, enc.Len(), o)
}

// RunElect runs Algorithm Elect with an externally supplied advice
// string (normally produced by ComputeAdvice).
func (s *System) RunElect(g *Graph, adv Bits, o Options) (*Result, error) {
	f, err := algorithms.NewElectFactory(s.table(), adv)
	if err != nil {
		return nil, err
	}
	return s.run(g, f, adv.Len(), o)
}

// RunGeneric runs Algorithm Generic(x) (Lemma 4.1): correct for any
// x >= φ(g), in time at most D + x + 1, with no other advice. The round
// budget uses the O(n+m) diameter upper bound — a budget only has to
// dominate D + x + 1, and the exact diameter is an all-pairs BFS that
// would wall off this entry point long before the engine's own limits.
func (s *System) RunGeneric(g *Graph, x int, o Options) (*Result, error) {
	if x < 1 {
		return nil, errors.New("election: Generic requires x >= 1")
	}
	if o.MaxRounds == 0 {
		_, hi := g.DiameterBounds()
		o.MaxRounds = hi + x + 2
	}
	return s.run(g, algorithms.NewGenericFactory(s.table(), x), 0, o)
}

// MilestoneAdvice returns the advice string and Generic parameter of
// Algorithm Election_i (i in 1..4, Theorem 4.1) for election index phi.
func MilestoneAdvice(i, phi int) (Bits, int) { return algorithms.ElectionAdvice(i, phi) }

// RunMilestone runs Algorithm Election_i with its Theorem 4.1 advice,
// derived from the true election index of g.
func (s *System) RunMilestone(g *Graph, i int, o Options) (*Result, error) {
	phi, ok := s.ElectionIndex(g)
	if !ok {
		return nil, errors.New("election: graph is infeasible")
	}
	adv, p := algorithms.ElectionAdvice(i, phi)
	f, err := algorithms.NewElectionFactory(s.table(), i, adv)
	if err != nil {
		return nil, err
	}
	if o.MaxRounds == 0 {
		if p > 1<<20 {
			return nil, fmt.Errorf("election: milestone %d parameter %d too large to simulate", i, p)
		}
		_, hi := g.DiameterBounds()
		o.MaxRounds = hi + p + 2
	}
	return s.run(g, f, adv.Len(), o)
}

// RunFullMap runs the Proposition 2.1 algorithm: every node is given an
// isomorphic map of g and elects in exactly φ(g) rounds with no advice
// string (the map itself is the knowledge).
func (s *System) RunFullMap(g *Graph, o Options) (*Result, error) {
	f, _, err := algorithms.NewFullMapFactory(s.table(), g)
	if err != nil {
		return nil, err
	}
	return s.run(g, f, 0, o)
}

// RunDPlusPhi runs the algorithm of the remark after Theorem 4.1: nodes
// receive (D, φ) as advice and elect in exactly D + φ rounds. This is
// the one entry point that semantically needs the exact diameter (it is
// part of the advice); the memoized Diameter makes the second use for
// the round budget free.
func (s *System) RunDPlusPhi(g *Graph, o Options) (*Result, error) {
	phi, ok := s.ElectionIndex(g)
	if !ok {
		return nil, errors.New("election: graph is infeasible")
	}
	adv := algorithms.DPlusPhiAdvice(g.Diameter(), phi)
	f, err := algorithms.NewDPlusPhiFactory(s.table(), adv)
	if err != nil {
		return nil, err
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = g.Diameter() + phi + 2
	}
	return s.run(g, f, adv.Len(), o)
}

// Verify checks an election outcome against the paper's correctness
// condition and returns the leader.
func Verify(g *Graph, outputs [][]int) (int, error) { return sim.Verify(g, outputs) }

// ComputeNaiveAdvice runs the strawman oracle that Section 3's
// introduction rejects: it ships every depth-φ view explicitly.
// maxBits caps the output (0 = no cap); exceeding it returns an error,
// which for deep election indices is the expected outcome.
func (s *System) ComputeNaiveAdvice(g *Graph, maxBits int) (Bits, error) {
	o := advice.NewOracle(s.table())
	na, err := o.ComputeNaiveAdvice(g, maxBits)
	if err != nil {
		return Bits{}, err
	}
	return na.Encode(), nil
}

// RunNaiveMinTime elects with the naive explicit-view advice — same φ
// rounds as RunMinTime, vastly larger advice. It exists as the baseline
// the trie-based oracle is compared against.
func (s *System) RunNaiveMinTime(g *Graph, maxBits int, o Options) (*Result, error) {
	enc, err := s.ComputeNaiveAdvice(g, maxBits)
	if err != nil {
		return nil, err
	}
	f, err := algorithms.NewNaiveElectFactory(s.table(), enc)
	if err != nil {
		return nil, err
	}
	return s.run(g, f, enc.Len(), o)
}

// RunTreeElect runs the advice-free tree election algorithm: every node
// reconstructs the tree from its view and stops at its eccentricity, so
// election completes by round D. It errors (via the round budget) on
// non-trees — the contrast with Proposition 4.1.
func (s *System) RunTreeElect(g *Graph, o Options) (*Result, error) {
	if o.MaxRounds == 0 {
		_, hi := g.DiameterBounds()
		o.MaxRounds = hi + 2
	}
	return s.run(g, algorithms.NewTreeElectFactory(s.table()), 0, o)
}

// StablePartition returns the partition of nodes into classes of equal
// infinite views (Yamashita–Kameda) and the depth at which refinement
// stabilized; the graph is feasible iff every class is a singleton.
func (s *System) StablePartition(g *Graph) (classes []int, depth int) {
	classes, depth, _ = s.StablePartitionCtx(context.Background(), g)
	return classes, depth
}
