package election

// Metamorphic invariance tests (DESIGN.md §7): the oracle and the
// election pipeline are functions of the *anonymous* port-labeled
// graph, so everything they compute must be equivariant under a
// relabeling of the simulation ids — φ and the advice bit string are
// exactly invariant, the stable partition and the elected leader
// follow the relabeling. A per-node *port* permutation, by contrast,
// changes the anonymous structure itself (views encode port numbers:
// ShufflePorts turns the infeasible canonical torus into a feasible
// graph, which TestMetamorphicPortPermutation pins as a negative
// control), so the pinned invariant for port permutations is that the
// permuted instance again satisfies the full relabel-equivariance
// contract — its outcome depends only on its anonymous isomorphism
// class, never on the node numbering that happened to build it.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bits"
	"repro/internal/graph"
)

// metamorphicFamilies is a representative cross-section of the
// feasible families, kept small enough to run every engine on every
// member under -race.
func metamorphicFamilies() map[string]*Graph {
	return map[string]*Graph{
		"hairy":       BuildHairyRing([]int{2, 0, 3, 1}).G,
		"necklace":    BuildNecklace(4, 3, 3, NecklaceCode(4, 3, 1)).G,
		"hk":          BuildHk(5, 3).G,
		"lollipop":    Lollipop(4, 3),
		"grid":        Grid(4, 3),
		"wheel-tail":  WheelWithTail(6, 3),
		"caterpillar": Caterpillar([]int{2, 0, 1, 3}),
		"random":      RandomConnected(30, 15, 11),
	}
}

// samePartitionUpTo checks that classes2 ∘ perm and classes1 induce the
// same partition of the nodes (class numbering is by first occurrence
// in node order, so the ids themselves legitimately differ).
func samePartitionUpTo(t *testing.T, label string, classes1, classes2, perm []int) {
	t.Helper()
	fwd := map[int]int{}
	bwd := map[int]int{}
	for v := range classes1 {
		c1, c2 := classes1[v], classes2[perm[v]]
		if c, ok := fwd[c1]; ok && c != c2 {
			t.Errorf("%s: class %d split by relabeling", label, c1)
			return
		}
		if c, ok := bwd[c2]; ok && c != c1 {
			t.Errorf("%s: class %d merged by relabeling", label, c2)
			return
		}
		fwd[c1], bwd[c2] = c2, c1
	}
}

// assertRelabelEquivariant pins the full contract on one instance: for
// a random node relabeling, φ, feasibility and the advice bit string
// are invariant; the stable partition, the elected leader (hence the
// leader's view class — at depth φ the classes are singletons tied to
// the node's view, and label 1 of the invariant advice names the same
// view on both sides) and every per-node output follow the relabeling —
// on the BSP, sequential and asynchronous engines.
func assertRelabelEquivariant(t *testing.T, name string, g *Graph, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(g.N())
	g2 := graph.RelabelNodes(g, perm)

	s1, s2 := NewSystem(), NewSystem()
	phi1, ok1 := s1.ElectionIndex(g)
	phi2, ok2 := s2.ElectionIndex(g2)
	if phi1 != phi2 || ok1 != ok2 {
		t.Errorf("%s: election index (%d,%v) changed to (%d,%v) under relabeling", name, phi1, ok1, phi2, ok2)
	}
	classes1, depth1 := s1.StablePartition(g)
	classes2, depth2 := s2.StablePartition(g2)
	if depth1 != depth2 {
		t.Errorf("%s: stabilization depth %d != %d", name, depth1, depth2)
	}
	samePartitionUpTo(t, name+"/stable-partition", classes1, classes2, perm)
	if !ok1 {
		return
	}

	_, enc1, err := s1.ComputeAdvice(g)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	_, enc2, err := s2.ComputeAdvice(g2)
	if err != nil {
		t.Fatalf("%s (relabeled): %v", name, err)
	}
	if !bits.Equal(enc1, enc2) {
		t.Errorf("%s: advice bit string not invariant under relabeling", name)
	}

	engines := map[string]Options{
		"bsp":           {},
		"seq":           {Engine: SimSequential},
		"async-uniform": {Async: true, AsyncSeed: seed},
		"async-pareto":  {Async: true, AsyncSeed: seed, Delay: &ParetoDelay{}},
	}
	for ename, o := range engines {
		r1, err := s1.RunMinTime(g, o)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, ename, err)
		}
		r2, err := s2.RunMinTime(g2, o)
		if err != nil {
			t.Fatalf("%s/%s (relabeled): %v", name, ename, err)
		}
		if r1.Time != r2.Time {
			t.Errorf("%s/%s: time %d != %d under relabeling", name, ename, r1.Time, r2.Time)
		}
		if r2.Leader != perm[r1.Leader] {
			t.Errorf("%s/%s: leader %d does not follow the relabeling of %d", name, ename, r2.Leader, r1.Leader)
		}
		for v := 0; v < g.N(); v++ {
			if r1.Rounds[v] != r2.Rounds[perm[v]] {
				t.Errorf("%s/%s: node %d decision round not equivariant", name, ename, v)
				break
			}
		}
		for v := 0; v < g.N(); v++ {
			// Port sequences are untouched by a node relabeling.
			if !reflect.DeepEqual(r1.Outputs[v], r2.Outputs[perm[v]]) {
				t.Errorf("%s/%s: node %d output not equivariant", name, ename, v)
				break
			}
		}
	}
}

func TestMetamorphicRelabelInvariance(t *testing.T) {
	for name, g := range metamorphicFamilies() {
		for seed := int64(0); seed < 2; seed++ {
			assertRelabelEquivariant(t, name, g, seed+1)
		}
	}
}

// TestMetamorphicPortPermutation: a per-node port permutation yields a
// *different* anonymous graph (negative control below), but the result
// on the permuted instance must again be a pure function of its
// anonymous structure — the full relabel-equivariance contract holds
// for every port-shuffled variant.
func TestMetamorphicPortPermutation(t *testing.T) {
	// Negative control: port numbering is semantically load-bearing.
	// The canonical torus is infeasible; a port shuffle of the same
	// topology is (generically) feasible, so "port permutation
	// preserves φ" would be a false invariant to pin.
	s := NewSystem()
	if s.Feasible(Torus(3, 4)) {
		t.Fatal("canonical torus unexpectedly feasible")
	}
	if !s.Feasible(ShufflePorts(Torus(3, 4), 1)) {
		t.Fatal("shuffled torus unexpectedly infeasible; pick another shuffle seed")
	}

	for name, g := range metamorphicFamilies() {
		for shuffle := int64(1); shuffle <= 2; shuffle++ {
			g2 := ShufflePorts(g, shuffle)
			assertRelabelEquivariant(t, name+"/shuffled", g2, shuffle)
		}
	}
}
